package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/sim"
	"fuse/internal/store"
)

// newTestServer builds a quick-scale server over a fresh memory+disk cache,
// counting real simulator executions.
func newTestServer(t *testing.T, dir string, execs *atomic.Int32) *httptest.Server {
	t.Helper()
	disk, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := store.NewTiered(store.NewMemory(), disk)
	runner := engine.New(engine.Config{
		Cache: cache,
		Exec: func(ctx context.Context, job engine.Job) (sim.Result, error) {
			execs.Add(1)
			return engine.Execute(ctx, job)
		},
	})
	ts := httptest.NewServer(newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		health: cache, timeout: time.Minute, simWorkers: 8,
	}))
	t.Cleanup(ts.Close)
	return ts
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, batchResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &br); err != nil {
			t.Fatalf("decoding batch response: %v\n%s", err, data)
		}
	}
	return resp, br
}

func TestBatchEndpointRunsAndStoresResults(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)

	resp, br := postBatch(t, ts, `{"jobs":[
		{"kind":"L1-SRAM","workload":"ATAX"},
		{"kind":"Dy-FUSE","workload":"ATAX"}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
	for i, res := range br.Results {
		if res.Error != "" {
			t.Fatalf("job %d failed: %s", i, res.Error)
		}
		if res.Result == nil || res.Result.Cycles == 0 {
			t.Errorf("job %d: empty result", i)
		}
		if !store.ValidKey(res.Key) {
			t.Errorf("job %d: bad store key %q", i, res.Key)
		}
	}
	if execs.Load() != 2 {
		t.Errorf("executed %d simulations, want 2", execs.Load())
	}

	// The batch's results are immediately fetchable by key.
	keyResp, err := http.Get(ts.URL + "/v1/result/" + br.Results[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	defer keyResp.Body.Close()
	if keyResp.StatusCode != http.StatusOK {
		t.Fatalf("GET result status = %d", keyResp.StatusCode)
	}
	var fetched sim.Result
	if err := json.NewDecoder(keyResp.Body).Decode(&fetched); err != nil {
		t.Fatal(err)
	}
	if fetched.Cycles != br.Results[0].Result.Cycles || fetched.Workload != "ATAX" {
		t.Errorf("fetched result does not match the batch result")
	}

	// Re-submitting the batch is served without simulating.
	resp2, br2 := postBatch(t, ts, `{"jobs":[
		{"kind":"L1-SRAM","workload":"ATAX"},
		{"kind":"Dy-FUSE","workload":"ATAX"}
	]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm status = %d", resp2.StatusCode)
	}
	if execs.Load() != 2 {
		t.Errorf("warm batch re-simulated: %d executions", execs.Load())
	}
	if br2.Results[0].Result.IPC != br.Results[0].Result.IPC {
		t.Errorf("warm result differs from cold")
	}
}

func TestBatchValidation(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"jobs":`},
		{"empty batch", `{"jobs":[]}`},
		{"unknown kind", `{"jobs":[{"kind":"NVRAM","workload":"ATAX"}]}`},
		{"unknown workload", `{"jobs":[{"kind":"Dy-FUSE","workload":"nope"}]}`},
		{"unknown field", `{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}],"bogus":1}`},
	}
	for _, tc := range cases {
		resp, _ := postBatch(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if execs.Load() != 0 {
		t.Errorf("rejected batches must not simulate")
	}
}

func TestResultEndpointKeyHandling(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)

	resp, err := http.Get(ts.URL + "/v1/result/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed key: status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/result/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status = %d, want 404", resp.StatusCode)
	}
}

func TestFigureEndpointServesFig13(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)

	resp, err := http.Get(ts.URL + "/v1/figures/13?workloads=ATAX,pathf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("Figure 13")) || !bytes.Contains(body, []byte("ATAX")) {
		t.Errorf("figure table missing expected content:\n%s", body)
	}
	cold := execs.Load()
	if cold == 0 {
		t.Fatalf("cold figure should simulate")
	}

	// Figure 14 shares figure 13's matrix: serving it is free.
	resp2, err := http.Get(ts.URL + "/v1/figures/14?workloads=ATAX,pathf")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fig14 status = %d", resp2.StatusCode)
	}
	if execs.Load() != cold {
		t.Errorf("figure 14 re-simulated the shared matrix (%d -> %d executions)", cold, execs.Load())
	}

	// Unknown figures 404.
	resp3, err := http.Get(ts.URL + "/v1/figures/12")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("figure 12: status = %d, want 404", resp3.StatusCode)
	}

	// Unknown workloads are a client error, not a 500.
	resp4, err := http.Get(ts.URL + "/v1/figures/13?workloads=ATAXX")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus workload: status = %d, want 400", resp4.StatusCode)
	}
}

func TestServerWarmAcrossProcessesViaSharedStore(t *testing.T) {
	// Two server "processes" sharing one store directory: the second serves
	// the figure without a single simulation.
	dir := t.TempDir()

	var cold atomic.Int32
	ts1 := newTestServer(t, dir, &cold)
	resp, err := http.Get(ts1.URL + "/v1/figures/13?workloads=ATAX")
	if err != nil {
		t.Fatal(err)
	}
	table1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if cold.Load() == 0 {
		t.Fatalf("cold server should simulate")
	}
	ts1.Close()

	var warm atomic.Int32
	ts2 := newTestServer(t, dir, &warm)
	resp2, err := http.Get(ts2.URL + "/v1/figures/13?workloads=ATAX")
	if err != nil {
		t.Fatal(err)
	}
	table2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if warm.Load() != 0 {
		t.Errorf("warm server executed %d simulations, want 0", warm.Load())
	}
	if !bytes.Equal(table1, table2) {
		t.Errorf("warm figure differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", table1, table2)
	}
}

func TestPerRequestTimeout(t *testing.T) {
	// A stalling executor plus a tiny timeout: the batch must come back as
	// 504, not hang.
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{
		Cache: cache,
		Exec: func(ctx context.Context, job engine.Job) (sim.Result, error) {
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		},
	})
	ts := httptest.NewServer(newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		health: cache, timeout: 50 * time.Millisecond, simWorkers: 8,
	}))
	defer ts.Close()

	resp, _ := postBatch(t, ts, `{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
}

func TestBatchBackendOption(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)

	resp, br := postBatch(t, ts, `{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}],"options":{"backend":"STT-MRAM"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if br.Results[0].Error != "" {
		t.Fatalf("job failed: %s", br.Results[0].Error)
	}
	if got := br.Results[0].Result.MemBackend; got != "STT-MRAM" {
		t.Errorf("MemBackend = %q, want STT-MRAM", got)
	}
	if !store.ValidKey(br.Results[0].Key) {
		t.Errorf("backend-override job should still produce a store key")
	}

	// The same job on the default backend is a different simulation.
	_, brDefault := postBatch(t, ts, `{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}]}`)
	if brDefault.Results[0].Key == br.Results[0].Key {
		t.Errorf("backend must be part of the store key")
	}

	// An unknown backend is rejected before any simulation runs.
	before := execs.Load()
	respBad, _ := postBatch(t, ts, `{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}],"options":{"backend":"PCM-9000"}}`)
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown backend status = %d, want 400", respBad.StatusCode)
	}
	if execs.Load() != before {
		t.Errorf("rejected batch must not simulate")
	}
}

func TestWorkloadsEndpointListsRegistry(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Workloads []workloadInfo `json:"workloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workloads) < 21 {
		t.Fatalf("expected at least the 21 builtin workloads, got %d", len(body.Workloads))
	}
	builtins := 0
	byName := map[string]workloadInfo{}
	for _, w := range body.Workloads {
		byName[w.Name] = w
		if w.Builtin {
			builtins++
		}
	}
	if builtins != 21 {
		t.Errorf("expected exactly 21 builtin entries, got %d", builtins)
	}
	atax, ok := byName["ATAX"]
	if !ok || atax.Kind != "profile" || !atax.Builtin || atax.APKI != 64 {
		t.Errorf("ATAX entry wrong: %+v", atax)
	}
}

func TestBatchInlineWorkloadDefinitions(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)

	// Define a profile and a phased workload inline and run them in the same
	// request.
	body := `{
		"workloads": {
			"profiles": [{"name": "srv-ml", "suite": "ML", "apki": 120,
				"mix": {"wm": 0.35, "readIntensive": 0.25, "worm": 0.3, "woro": 0.1},
				"workingSetBlocks": 420, "irregular": 0.4, "wormReuse": 3}],
			"phased": [{"name": "srv-train", "phases": [
				{"profile": "srv-ml", "instructions": 500}, {"profile": "GEMM"}]}]
		},
		"jobs": [{"kind": "Dy-FUSE", "workload": "srv-ml"},
		         {"kind": "Dy-FUSE", "workload": "srv-train"}]
	}`
	resp, br := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for i, r := range br.Results {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("job %d failed: %s", i, r.Error)
		}
		if r.Key == "" || r.Result.Instructions == 0 {
			t.Errorf("job %d: missing key or empty result", i)
		}
	}
	if br.Results[0].Result.Workload != "srv-ml" || br.Results[1].Result.Workload != "srv-train" {
		t.Errorf("inline workloads should run under their own names: %+v", br.Results)
	}

	// The inline definitions persist in the registry: listed, and re-usable
	// without re-defining. Identical re-definition is accepted.
	resp2, br2 := postBatch(t, ts, body)
	if resp2.StatusCode != http.StatusOK || br2.Results[0].Error != "" {
		t.Fatalf("identical re-definition should succeed: %d", resp2.StatusCode)
	}
	if br2.Results[0].Key != br.Results[0].Key {
		t.Errorf("re-run of the same inline workload must hit the same store key")
	}

	// Conflicting redefinition is a 400.
	conflict := strings.Replace(body, `"apki": 120`, `"apki": 7`, 1)
	resp3, _ := postBatch(t, ts, conflict)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting redefinition should be a 400, got %d", resp3.StatusCode)
	}

	// Referencing an undefined workload is still a 400 with the registry's
	// error message.
	resp4, _ := postBatch(t, ts, `{"jobs":[{"kind":"Dy-FUSE","workload":"srv-undefined"}]}`)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload should be a 400, got %d", resp4.StatusCode)
	}

	// Invalid inline profiles are rejected before any job runs — and the
	// rejection is atomic: valid entries earlier in the same block must not
	// leak into the registry (a 400 means no server state changed).
	bad := `{"workloads": {"profiles": [
		{"name": "srv-leak", "apki": 40,
		 "mix": {"wm": 0.25, "readIntensive": 0.25, "worm": 0.25, "woro": 0.25},
		 "workingSetBlocks": 100, "irregular": 0.1, "wormReuse": 2},
		{"name": "srv-bad", "apki": 0,
		 "mix": {"wm": 1}, "workingSetBlocks": 1, "wormReuse": 1}]},
		"jobs": [{"kind": "Dy-FUSE", "workload": "srv-bad"}]}`
	resp5, _ := postBatch(t, ts, bad)
	if resp5.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid inline profile should be a 400, got %d", resp5.StatusCode)
	}
	resp6, _ := postBatch(t, ts, `{"jobs":[{"kind":"Dy-FUSE","workload":"srv-leak"}]}`)
	if resp6.StatusCode != http.StatusBadRequest {
		t.Errorf("rejected definition block must not register its valid entries, got %d", resp6.StatusCode)
	}
}

func TestBatchSimWorkersClampedAndDeterministic(t *testing.T) {
	// A custom executor captures the per-job sim-worker counts the server
	// resolves; the clamp is the server-wide cap passed to newServer.
	var seen []int
	var mu sync.Mutex
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{
		Cache: cache,
		Exec: func(ctx context.Context, job engine.Job) (sim.Result, error) {
			mu.Lock()
			seen = append(seen, job.SimWorkers)
			mu.Unlock()
			return engine.Execute(ctx, job)
		},
	})
	ts := httptest.NewServer(newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		health: cache, timeout: time.Minute, simWorkers: 2,
	}))
	t.Cleanup(ts.Close)

	// Request far more sim workers than the server cap of 2.
	resp, br := postBatch(t, ts, `{"jobs":[{"kind":"L1-SRAM","workload":"ATAX"}],
		"options":{"simWorkers":64}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	parallel := *br.Results[0].Result

	mu.Lock()
	got := append([]int(nil), seen...)
	mu.Unlock()
	if len(got) != 1 || got[0] > 2 {
		t.Fatalf("sim workers not clamped to the server cap: %v", got)
	}

	// The same job without simWorkers (sequential) must hit the store —
	// parallel execution cannot change the content-addressed key — and
	// return the identical result.
	execsBefore := runner.Executed()
	resp, br = postBatch(t, ts, `{"jobs":[{"kind":"L1-SRAM","workload":"ATAX"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if runner.Executed() != execsBefore {
		t.Errorf("sequential re-request should be served from the store")
	}
	if *br.Results[0].Result != parallel {
		t.Errorf("parallel and sequential batch results differ")
	}
}

// getJSON fetches a URL and decodes its JSON body into v.
func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

func TestHealthzAndReadyzHealthy(t *testing.T) {
	var execs atomic.Int32
	ts := newTestServer(t, t.TempDir(), &execs)

	var h healthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", resp.StatusCode)
	}
	if h.Status != "ok" || h.Draining || h.InFlight != 0 {
		t.Errorf("healthy server reported %+v", h)
	}
	if len(h.Store) != 2 || h.Store[0].Tier != "memory" || h.Store[1].Tier != "disk" {
		t.Errorf("store tiers = %+v, want [memory disk]", h.Store)
	}
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz status = %d, want 200", resp.StatusCode)
	}
}

func TestReadyzReportsDegradedDiskTier(t *testing.T) {
	dir := t.TempDir()
	var execs atomic.Int32
	ts := newTestServer(t, dir, &execs)

	// Plant a directory at a valid key's entry path: every read of that key
	// fails with a non-ENOENT error, and DegradedThreshold consecutive
	// failures trip the disk tier.
	disk, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := os.MkdirAll(disk.EntryPath(key), 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < store.DegradedThreshold; i++ {
		if resp := getJSON(t, ts.URL+"/v1/result/"+key, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unreadable entry should read as a miss, got %d", resp.StatusCode)
		}
	}

	var h healthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz must stay 200 while degraded, got %d", resp.StatusCode)
	}
	if h.Status != "degraded" {
		t.Errorf("healthz status = %q, want degraded: %+v", h.Status, h)
	}
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz status = %d, want 503 while the disk tier is tripped", resp.StatusCode)
	}

	// A successful store write recovers the tier and readiness.
	if resp := getJSON(t, ts.URL+"/v1/figures/13?workloads=ATAX", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("figure request failed: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/readyz", &h); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz should recover after successful I/O, got %d (%+v)", resp.StatusCode, h)
	}
}

func TestAdmissionControlBoundsInflightBatches(t *testing.T) {
	// A stalling executor holds the first batch in flight; with maxInflight
	// 1, the second must be refused with 503 + Retry-After.
	gate := make(chan struct{})
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{
		Cache: cache,
		Exec: func(ctx context.Context, job engine.Job) (sim.Result, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			}
			return sim.Result{Workload: job.Workload}, nil
		},
	})
	ts := httptest.NewServer(newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		timeout: time.Minute, simWorkers: 1, maxInflight: 1,
	}))
	defer ts.Close()
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	defer release()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
			strings.NewReader(`{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}]}`))
		if err != nil {
			first <- 0
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()

	// Wait until the first batch is admitted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var h healthResponse
		getJSON(t, ts.URL+"/healthz", &h)
		if h.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first batch never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"jobs":[{"kind":"Dy-FUSE","workload":"GEMM"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("over-capacity batch status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 must carry a Retry-After header")
	}

	// Releasing the gate lets the admitted batch finish normally.
	release()
	if code := <-first; code != http.StatusOK {
		t.Errorf("admitted batch status = %d, want 200", code)
	}
}

func TestDrainingRefusesNewWork(t *testing.T) {
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{Cache: cache})
	app := newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		health: store.NewTiered(store.NewMemory()), timeout: time.Minute, simWorkers: 1,
	})
	ts := httptest.NewServer(app)
	defer ts.Close()

	app.beginDrain()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"jobs":[{"kind":"Dy-FUSE","workload":"ATAX"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining batch status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining 503 must carry Retry-After")
	}
	var h healthResponse
	if r := getJSON(t, ts.URL+"/readyz", &h); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", r.StatusCode)
	}
	if h.Status != "draining" {
		t.Errorf("readyz status = %q, want draining", h.Status)
	}
	// Liveness and result reads stay available during the drain.
	if r := getJSON(t, ts.URL+"/healthz", nil); r.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", r.StatusCode)
	}
}

func TestPanicMiddlewareReturnsStructured500(t *testing.T) {
	cache := store.NewTiered(store.NewMemory())
	runner := engine.New(engine.Config{Cache: cache})
	app := newServer(serverConfig{
		scale: experiments.QuickScale, runner: runner, results: cache,
		timeout: time.Minute, simWorkers: 1,
	})
	// Route a deliberately panicking handler through the middleware.
	app.mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	ts := httptest.NewServer(app)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "handler exploded") {
		t.Errorf("want a structured JSON error, got %s", body)
	}
	// The server survived and reports the panic.
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.HandlerPanics != 1 {
		t.Errorf("HandlerPanics = %d, want 1", h.HandlerPanics)
	}
	if r := getJSON(t, ts.URL+"/v1/workloads", nil); r.StatusCode != http.StatusOK {
		t.Errorf("server unusable after a handler panic: %d", r.StatusCode)
	}
}
