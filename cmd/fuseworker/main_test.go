package main

import (
	"context"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fuse/internal/cluster"
	"fuse/internal/engine"
	"fuse/internal/experiments"
	"fuse/internal/store"
)

// buildTool compiles this command into a temp binary once per test.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fuseworker")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestWorkerBinaryEndToEnd: the real binary registers with a real HTTP
// coordinator, executes a dispatched job (result identical to in-process
// execution), and SIGTERM produces a clean exit — the contract the CI
// cluster-smoke job and production deployments rely on.
func TestWorkerBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildTool(t)

	coord := cluster.New(cluster.Config{Cache: store.NewMemory()})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	cmd := exec.Command(bin,
		"-coordinator", srv.URL,
		"-id", "e2e-worker",
		"-parallel", "2",
		"-store", filepath.Join(t.TempDir(), "store"))
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting fuseworker: %v", err)
	}
	// Always reap the child, whatever path the test takes.
	exited := false
	defer func() {
		if !exited {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	job := engine.Job{Kind: 0, Workload: "ATAX", Opts: experiments.QuickScale.Options()}
	got, err := coord.Execute(ctx, job)
	if err != nil {
		t.Fatalf("Execute through worker binary: %v\nworker stderr: %s", err, stderr.String())
	}
	want, err := engine.Execute(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("worker-binary result differs from in-process execution\nwant %+v\ngot  %+v", want, got)
	}
	if s := coord.Stats(); s.Completed == 0 || s.Workers != 1 {
		t.Errorf("coordinator stats after job: %+v", s)
	}

	// SIGTERM must stop the worker cleanly: exit code 0, clean-stop log line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("worker did not exit cleanly on SIGTERM: %v\nstderr: %s", err, stderr.String())
	}
	exited = true
	if !strings.Contains(stderr.String(), "stopped cleanly") {
		t.Errorf("missing clean-stop log line; stderr:\n%s", stderr.String())
	}
}

// TestWorkerBinaryRequiresCoordinator: usage errors exit 2 before any
// network or simulation work.
func TestWorkerBinaryRequiresCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binary")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("bare invocation: err = %v, want exit code 2", err)
	}
	if !strings.Contains(string(out), "-coordinator is required") {
		t.Errorf("missing usage message: %s", out)
	}
}
