// Command fuseworker is one node of the distributed simulation fleet: it
// registers with a fuseserve coordinator, pulls simulation jobs over HTTP,
// executes them through the same engine/store pipeline a single process
// uses, and streams results back.
//
// Each worker owns a local cache (memory tier, optional disk tier) plus a
// read-through remote tier pointed back at the coordinator's store endpoint,
// so any result any node has ever computed is warm fleet-wide. Jobs are
// sharded to workers by content-addressed store key, which keeps each
// worker's disk tier hot for its share of the design space across batches.
//
// Usage:
//
//	fuseworker -coordinator http://fuseserve-host:8080
//	fuseworker -coordinator http://fuseserve-host:8080 \
//	  -id rack3-node7 -store /var/lib/fuse -parallel 8
//
// SIGINT/SIGTERM stops pulling and abandons in-flight jobs; the
// coordinator's lease machinery re-dispatches them, so killing a worker
// mid-batch never changes (or loses) results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"fuse/internal/cluster"
	"fuse/internal/engine"
	"fuse/internal/store"
	"fuse/internal/trace"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL, e.g. http://host:8080 (required)")
		id          = flag.String("id", "", "worker identity, unique in the fleet (default host-pid)")
		storeDir    = flag.String("store", "", "persistent result-store directory for this node (empty = memory only)")
		parallel    = flag.Int("parallel", 0, "number of concurrent simulations, which is also the number of jobs pulled at once (0 = GOMAXPROCS)")
		simCap      = flag.Int("simworkers", 0, "worker goroutines inside each simulation (0 = divide the cores across -parallel; results are identical for any value)")
		retries     = flag.Int("retries", 1, "per-job retries on transient execution failures (0 = none)")
		memCap      = flag.Int("memcap", 65536, "memory cache-tier entry bound with LRU eviction (0 = unbounded)")
		noRemote    = flag.Bool("noremotestore", false, "disable the read-through remote store tier (coordinator store endpoint)")
		workFile    = flag.String("workloads", "", "workload file (JSON) of custom profiles to register at startup; must match the coordinator's")
	)
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "fuseworker: -coordinator is required")
		os.Exit(2)
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	if *workFile != "" {
		names, err := trace.LoadWorkloadFile(*workFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuseworker: %v\n", err)
			os.Exit(1)
		}
		log.Printf("fuseworker: registered workloads from %s: %s", *workFile, strings.Join(names, ", "))
	}

	// Cache tiers, fastest first: memory, disk (optional), then the
	// coordinator's store endpoint as the shared remote tier. The remote
	// tier behaves as empty when the coordinator is unreachable (and
	// reports Degraded), so a network wobble costs recomputation, never
	// correctness.
	tiers := []store.Cache{store.NewMemoryLRU(*memCap)}
	if *storeDir != "" {
		disk, err := store.Open(*storeDir)
		if err != nil {
			log.Printf("fuseworker: warning: %v; continuing without the disk tier", err)
		} else {
			tiers = append(tiers, disk)
		}
	}
	if !*noRemote {
		tiers = append(tiers, store.NewRemote(strings.TrimSuffix(*coordinator, "/")+cluster.PathStore, nil))
	}
	cache := store.NewTiered(tiers...)

	// Pulled jobs run through a full engine.Runner, so a worker gets the
	// same dedup, store write-through, retry and panic-containment pipeline
	// as a single-process fuseserve.
	runner := engine.New(engine.Config{
		Workers:    *parallel,
		SimWorkers: *simCap,
		Cache:      cache,
		Retries:    *retries,
	})

	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: strings.TrimSuffix(*coordinator, "/"),
		ID:          *id,
		Exec:        runner.Get,
		Pullers:     runner.Workers(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuseworker: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("fuseworker: %s pulling from %s (%d parallel, GOMAXPROCS %d)",
		*id, *coordinator, runner.Workers(), runtime.GOMAXPROCS(0))
	err = w.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("fuseworker: %v", err)
	}
	log.Printf("fuseworker: %s stopped cleanly", *id)
}
