// Package fusebench is the benchmark harness of the repository: one
// testing.B benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates the corresponding artefact (at a reduced but
// representative simulation scale) and reports the headline quantity of that
// artefact as a custom benchmark metric, so that
//
//	go test -bench=. -benchmem
//
// prints, next to the usual ns/op, the reproduced numbers (geometric-mean
// speedups, miss rates, accuracy fractions, false-positive rates, transistor
// counts). EXPERIMENTS.md records how these compare with the paper.
package fusebench

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"fuse/internal/area"
	"fuse/internal/config"
	"fuse/internal/energy"
	"fuse/internal/experiments"
	"fuse/internal/sim"
	"fuse/internal/stats"
	"fuse/internal/trace"
)

// benchScale is the per-run simulation scale used by the benchmarks. It keeps
// a full figure regeneration in the tens of seconds; use cmd/fusetables
// -scale full for the 15-SM version.
var benchScale = experiments.BenchScale

// benchWorkloads is the workload subset used by the per-figure benchmarks to
// keep the harness fast while covering the paper's main behaviour classes:
// irregular (ATAX, GESUM), high-APKI (GEMM), write-heavy (2MM, PVC), regular
// (2DCONV) and compute-bound (pathf).
var benchWorkloads = []string{"2DCONV", "2MM", "ATAX", "GESUM", "GEMM", "PVC", "pathf"}

// cell parses a numeric table cell.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("non-numeric cell %q: %v", s, err)
	}
	return v
}

// lastRow returns the last row of a table (the MEAN/GMEAN row for most
// figures).
func lastRow(t *stats.Table) []string { return t.Rows[len(t.Rows)-1] }

func BenchmarkFig01_OffchipOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig1OffChipOverheads(m, benchWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		mean := lastRow(tab)
		b.ReportMetric(cell(b, mean[3]), "offchip-time-frac")
		b.ReportMetric(cell(b, mean[4]), "offchip-energy-frac")
	}
}

func BenchmarkFig03_MotivationCaches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig3Motivation(m)
		if err != nil {
			b.Fatal(err)
		}
		// Average oracle speedup across the seven motivation workloads.
		var sum float64
		for _, row := range tab.Rows {
			sum += cell(b, row[6])
		}
		b.ReportMetric(sum/float64(len(tab.Rows)), "oracle-speedup")
	}
}

func BenchmarkFig06_ReadLevelAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig6ReadLevelAnalysis(experiments.AllWorkloads(), 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, lastRow(tab)[3]), "mean-worm+woro-frac")
	}
}

func BenchmarkFig07_ApproxVsFullyAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig7ApproxVsFullyAssociative(m)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range tab.Rows {
			sum += cell(b, row[1])
		}
		b.ReportMetric(sum/float64(len(tab.Rows)), "approx-vs-fa-ipc-ratio")
	}
}

func BenchmarkTable02_WorkloadCharacterisation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Table2Workloads(m, benchWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != len(benchWorkloads) {
			b.Fatalf("expected %d rows", len(benchWorkloads))
		}
	}
}

func BenchmarkFig13_NormalizedIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig13NormalizedIPC(m, benchWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		gmean := lastRow(tab)
		// Columns: workload, By-NVM, FA-SRAM, Hybrid, Base-FUSE, FA-FUSE, Dy-FUSE.
		b.ReportMetric(cell(b, gmean[1]), "bynvm-speedup")
		b.ReportMetric(cell(b, gmean[3]), "hybrid-speedup")
		b.ReportMetric(cell(b, gmean[5]), "fafuse-speedup")
		b.ReportMetric(cell(b, gmean[6]), "dyfuse-speedup")
	}
}

func BenchmarkFig14_MissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig14MissRate(m, benchWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		mean := lastRow(tab)
		b.ReportMetric(cell(b, mean[1]), "l1sram-missrate")
		b.ReportMetric(cell(b, mean[7]), "dyfuse-missrate")
	}
}

func BenchmarkFig15_CacheStalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig15CacheStalls(m, benchWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		var hybrid, base float64
		for _, row := range tab.Rows {
			hybrid += cell(b, row[1])
			base += cell(b, row[2])
		}
		n := float64(len(tab.Rows))
		b.ReportMetric(base/n/max(hybrid/n, 1e-9), "basefuse-stall-ratio")
	}
}

func BenchmarkFig16_PredictorAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig16PredictorAccuracy(m, benchWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, lastRow(tab)[1]), "true+neutral-frac")
	}
}

func BenchmarkFig17_L1DEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig17L1DEnergy(m, benchWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		gmean := lastRow(tab)
		b.ReportMetric(cell(b, gmean[1]), "bynvm-energy-ratio")
		b.ReportMetric(cell(b, gmean[4]), "dyfuse-energy-ratio")
	}
}

func BenchmarkFig18_RatioSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig18RatioSweep(m)
		if err != nil {
			b.Fatal(err)
		}
		// Mean normalised IPC of the 1/2 split across the nine workloads.
		var half float64
		for _, row := range tab.Rows {
			half += cell(b, row[4])
		}
		b.ReportMetric(half/float64(len(tab.Rows)), "half-split-ipc-vs-1/16")
	}
}

func BenchmarkFig19_VoltaGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.NewMatrix(benchScale)
		tab, err := experiments.Fig19Volta(m, []string{"ATAX", "2MM", "GESUM"})
		if err != nil {
			b.Fatal(err)
		}
		gmean := lastRow(tab)
		b.ReportMetric(cell(b, gmean[5]), "volta-dyfuse-speedup")
	}
}

func BenchmarkFig20_CBFFalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig20CBFFalsePositives(42)
		if err != nil {
			b.Fatal(err)
		}
		var h1, h3 float64
		for _, row := range tab.Rows {
			h1 += cell(b, row[1])
			h3 += cell(b, row[3])
		}
		n := float64(len(tab.Rows))
		b.ReportMetric(h1/n, "fp-rate-1hash")
		b.ReportMetric(h3/n, "fp-rate-3hash")
	}
}

func BenchmarkTable03_Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table3Area()
		b.ReportMetric(float64(area.DyFUSE().Total()), "dyfuse-transistors")
		b.ReportMetric(area.OverheadPercent(), "overhead-pct")
	}
}

// BenchmarkFig13_FullMatrix measures the engine's batch execution of the
// complete figure-13 matrix (all 7 L1D configurations x all 21 workloads at
// BenchScale) with a serial worker pool versus a full-width one. On a
// multi-core machine the parallel sub-benchmark shows near-linear speedup;
// on any machine the parallel run must render a byte-identical table to the
// serial one, which the benchmark asserts (the workers=1 sub-benchmark runs
// first and records the reference output).
func BenchmarkFig13_FullMatrix(b *testing.B) {
	workerCounts := []int{1, max(2, runtime.GOMAXPROCS(0))}
	var serialRef string
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := experiments.NewMatrixWorkers(benchScale, workers)
				if err := m.Prewarm(context.Background(), []string{experiments.ExpFig13}, nil); err != nil {
					b.Fatal(err)
				}
				tab, err := experiments.Fig13NormalizedIPC(m, experiments.AllWorkloads())
				if err != nil {
					b.Fatal(err)
				}
				out := tab.String()
				if workers == 1 && serialRef == "" {
					serialRef = out
				}
				if serialRef != "" && out != serialRef {
					b.Fatalf("workers=%d table output differs from the serial reference", workers)
				}
				b.ReportMetric(float64(m.Runs()), "sims")
			}
		})
	}
}

// BenchmarkSingleSimulation measures the raw simulator throughput (cycles
// simulated per second) of one Dy-FUSE run — the cost of the cycle engine
// itself. The workers=1 sub-benchmark is the sequential sparse engine; the
// others run the conservative-parallel epoch engine, whose results must stay
// byte-identical (asserted on the cycle count and IPC every iteration).
// Every iteration reuses one sim.Arena, so steady-state allocations measure
// the engine, not the construction of its buffers.
func BenchmarkSingleSimulation(b *testing.B) {
	prof, _ := trace.ProfileByName("ATAX")
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	var refCycles int64
	var refIPC float64
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			arena := sim.NewArena()
			var cycles int64
			for i := 0; i < b.N; i++ {
				gpuCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
				s, err := sim.NewWithArena(gpuCfg, trace.Synthetic(prof), benchScale.Options(), arena)
				if err != nil {
					b.Fatal(err)
				}
				s.SetWorkers(workers)
				res := s.Run()
				s.ReleaseArena()
				cycles = res.Cycles
				if workers == 1 && refCycles == 0 {
					refCycles, refIPC = res.Cycles, res.IPC
				}
				if refCycles != 0 && (res.Cycles != refCycles || res.IPC != refIPC) {
					b.Fatalf("workers=%d diverged: cycles=%d ipc=%v, want cycles=%d ipc=%v",
						workers, res.Cycles, res.IPC, refCycles, refIPC)
				}
				b.ReportMetric(float64(res.Cycles), "cycles")
				b.ReportMetric(res.IPC, "ipc")
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkEnergyModel measures the energy-accounting overhead alone.
func BenchmarkEnergyModel(b *testing.B) {
	prof, _ := trace.ProfileByName("GESUM")
	gpuCfg := config.FermiGPU(config.NewL1DConfig(config.DyFUSE))
	s, err := sim.New(gpuCfg, trace.Synthetic(prof), benchScale.Options())
	if err != nil {
		b.Fatal(err)
	}
	res := s.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := energy.FromResult(res, gpuCfg)
		if br.Total() <= 0 {
			b.Fatal("energy should be positive")
		}
	}
}
