module fuse

go 1.24
