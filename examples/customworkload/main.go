// Custom workloads: define your own benchmark profiles in a JSON workload
// file, register them at runtime, and run them through the same engine the
// paper's 21 builtin benchmarks use — no recompilation.
//
// The checked-in workloads.json defines two workloads:
//
//   - "mlstress": an ML-style kernel (embedding-table stress) with a much
//     higher write fraction and APKI than any PolyBench benchmark — the kind
//     of workload DeepNVM++ shows shifts NVM conclusions.
//   - "train-step": a phased composite chaining mlstress into a GEMM-bound
//     phase, modelling a multi-kernel training step.
//
// Run with:
//
//	go run ./examples/customworkload
//	go run ./examples/customworkload -file path/to/workloads.json
//
// The same file works everywhere workload names do:
//
//	go run ./cmd/fusesim -workloads examples/customworkload/workloads.json -workload mlstress,train-step
//	go run ./cmd/fusetables -workloadfile examples/customworkload/workloads.json -exp fig13 -workloads ATAX,mlstress
package main

import (
	"flag"
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

func main() {
	file := flag.String("file", "examples/customworkload/workloads.json", "workload file to load")
	flag.Parse()

	// 1. Load the workload file: every entry is validated and registered in
	// the global workload registry.
	names, err := trace.LoadWorkloadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d workloads from %s: %v\n\n", len(names), *file, names)

	// 2. Registered names run exactly like builtins.
	opts := sim.Options{InstructionsPerWarp: 600, SMOverride: 4, Seed: 1}
	run := func(kind config.L1DKind, workload string) sim.Result {
		res, err := sim.RunWorkload(kind, workload, opts)
		if err != nil {
			log.Fatalf("%s on %v: %v", workload, kind, err)
		}
		return res
	}

	fmt.Println("=== mlstress (custom profile): L1-SRAM vs Dy-FUSE ===")
	base := run(config.L1SRAM, "mlstress")
	fuse := run(config.DyFUSE, "mlstress")
	fmt.Printf("%-22s %12s %12s\n", "", "L1-SRAM", "Dy-FUSE")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC, fuse.IPC)
	fmt.Printf("%-22s %12.3f %12.3f\n", "L1D miss rate", base.L1DMissRate, fuse.L1DMissRate)
	fmt.Printf("%-22s %12d %12d\n", "STT write stalls", base.STTWriteStalls, fuse.STTWriteStalls)
	fmt.Printf("Dy-FUSE speedup on the write-heavy ML kernel: %.2fx\n\n", fuse.SpeedupOver(base))

	// 3. Phased workloads chain profiles with per-phase instruction budgets.
	fmt.Println("=== train-step (phased: mlstress -> GEMM) on Dy-FUSE ===")
	phased := run(config.DyFUSE, "train-step")
	fmt.Printf("cycles=%d IPC=%.3f missRate=%.3f offChip=%.2f\n",
		phased.Cycles, phased.IPC, phased.L1DMissRate, phased.OffChipFraction)

	// 4. Workloads can also be built in code; Register makes them runnable
	// by name anywhere (engine jobs, the server's batch API, ...).
	gemm, _ := trace.ProfileByName("GEMM")
	custom := trace.Profile{
		Name: "inline-example", Suite: "Custom",
		Description:      "defined in code, not in a file",
		APKI:             30,
		Mix:              trace.ReadLevelMix{WM: 0.1, ReadIntensive: 0.2, WORM: 0.6, WORO: 0.1},
		WorkingSetBlocks: 300, Irregular: 0.7, WORMReuse: 4,
	}
	if err := trace.Register(trace.NewPhased("inline-phased", []trace.Phase{
		{Profile: custom, Instructions: 2000},
		{Profile: gemm},
	})); err != nil {
		log.Fatal(err)
	}
	inline := run(config.DyFUSE, "inline-phased")
	fmt.Printf("\n=== inline-phased (registered in code) ===\ncycles=%d IPC=%.3f\n",
		inline.Cycles, inline.IPC)
}
