// Backend sweep: what does the off-chip memory technology behind the fixed
// cache hierarchy cost? This example runs the paper's full Dy-FUSE proposal
// and the L1-SRAM baseline over every registered memory backend (the GDDR5
// baseline, a GDDR5X-class point, HBM2 and an STT-MRAM main-memory point) on
// an irregular workload, and reports IPC, the controller's row-hit rate and
// its dynamic energy per backend — the DeepNVM++-style sweep the pluggable
// Backend interface exists for.
//
// All points are independent simulations, so they are submitted as one batch
// to the engine's worker pool and run concurrently; results come back in
// submission order.
//
// Run with:
//
//	go run ./examples/backendsweep
//	go run ./examples/backendsweep -store /tmp/fusestore   # reruns are warm
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/dram"
	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/store"
)

func main() {
	storeDir := flag.String("store", "", "persistent result-store directory (optional)")
	workload := flag.String("workload", "ATAX", "benchmark to sweep")
	flag.Parse()

	opts := sim.Options{InstructionsPerWarp: 500, SMOverride: 3, Seed: 11}
	kinds := []config.L1DKind{config.L1SRAM, config.DyFUSE}
	backends := dram.Backends()

	// One batch: (kind, backend) cross product on the shared workload.
	// engine.BackendJob keeps the jobs store-key-compatible with the ones
	// fusesim/fusetables/fuseserve build for the same points.
	var jobs []engine.Job
	for _, kind := range kinds {
		for _, be := range backends {
			jobs = append(jobs, engine.BackendJob(kind, *workload, be, opts))
		}
	}

	cfg := engine.Config{}
	if *storeDir != "" {
		cache, err := store.OpenTiered(*storeDir)
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		cfg.Cache = cache
	}
	runner := engine.New(cfg)
	results, err := runner.RunBatch(context.Background(), jobs)
	if err != nil {
		log.Fatalf("batch: %v", err)
	}

	fmt.Printf("=== Memory-backend sweep on %s ===\n", *workload)
	fmt.Printf("(%d simulations on %d workers, %d served from the store)\n\n",
		len(jobs), runner.Workers(), runner.StoreHits())
	fmt.Printf("%-10s %-10s %8s %8s %9s %12s\n", "config", "backend", "IPC", "rowHit", "offchip", "DRAM uJ")

	i := 0
	for _, kind := range kinds {
		for range backends {
			res := results[i]
			fmt.Printf("%-10s %-10s %8.3f %8.2f %9.2f %12.1f\n",
				kind, res.MemBackend, res.IPC, res.DRAMRowHitRate, res.OffChipFraction, res.DRAMEnergyNJ/1000)
			i++
		}
		fmt.Println()
	}
	fmt.Println("Faster, denser backends shrink the off-chip fraction the paper's Figure 1")
	fmt.Println("attributes to DRAM; the STT-MRAM point trades write-burst latency for")
	fmt.Println("DRAM-class reads without refresh, mirroring the DeepNVM++ design space.")
}
