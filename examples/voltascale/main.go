// Volta-scale study: does FUSE still pay off on a modern GPU with a much
// larger, reconfigurable L1 (128 KB) and far more SMs? This example mirrors
// the paper's Figure 19: it builds a Volta-class GPU model (84 SMs, 6 MB L2,
// HBM2-class bandwidth), scales every L1D organisation to the 128 KB budget
// and compares them on an irregular and a write-heavy workload.
//
// Run with:
//
//	go run ./examples/voltascale
package main

import (
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

func main() {
	workloads := []string{"ATAX", "2MM"}
	kinds := []config.L1DKind{config.L1SRAM, config.ByNVM, config.BaseFUSE, config.DyFUSE}

	// Simulate a slice of the 84 SMs; the memory side scales with it.
	opts := sim.Options{InstructionsPerWarp: 500, SMOverride: 6, Seed: 5}

	fmt.Println("=== Volta-class GPU (84 SMs, 6 MB L2, 128 KB L1 budget) ===")
	for _, w := range workloads {
		profile, ok := trace.ProfileByName(w)
		if !ok {
			log.Fatalf("workload %s not found", w)
		}
		fmt.Printf("\n%s:\n", w)
		var base sim.Result
		for i, kind := range kinds {
			l1d := config.ScaleL1D(config.NewL1DConfig(kind), 4) // 4x the Fermi budget = 128 KB class
			gpuCfg := config.VoltaGPU(l1d)
			s, err := sim.New(gpuCfg, profile, opts)
			if err != nil {
				log.Fatalf("%s/%v: %v", w, kind, err)
			}
			res := s.Run()
			if i == 0 {
				base = res
			}
			fmt.Printf("  %-10s IPC %6.3f  (%.2fx vs L1-SRAM)  miss rate %.3f  L1D capacity %d KB\n",
				kind.String(), res.IPC, res.SpeedupOver(base), res.L1DMissRate, l1d.TotalKB())
		}
	}
	fmt.Println("\nEven with the 4x larger Volta L1 budget, the STT-MRAM-fused organisations keep")
	fmt.Println("their advantage on the irregular workload, while the write-heavy workload shows")
	fmt.Println("why the SRAM bank (and the read-level predictor steering writes into it) matters.")
}
