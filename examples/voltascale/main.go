// Volta-scale study: does FUSE still pay off on a modern GPU with a much
// larger, reconfigurable L1 (128 KB) and far more SMs? This example mirrors
// the paper's Figure 19: it builds a Volta-class GPU model (84 SMs, 6 MB L2,
// HBM2-class bandwidth), scales every L1D organisation to the 128 KB budget
// and compares them on an irregular and a write-heavy workload.
//
// The (configuration x workload) matrix is submitted to the engine as one
// batch and simulated concurrently; the report is printed from the
// deterministically ordered results.
//
// Run with:
//
//	go run ./examples/voltascale
//	go run ./examples/voltascale -store /tmp/fusestore   # reruns are warm
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/store"
)

func main() {
	storeDir := flag.String("store", "", "persistent result-store directory (optional)")
	flag.Parse()

	workloads := []string{"ATAX", "2MM"}
	kinds := []config.L1DKind{config.L1SRAM, config.ByNVM, config.BaseFUSE, config.DyFUSE}

	// Simulate a slice of the 84 SMs; the memory side scales with it.
	opts := sim.Options{InstructionsPerWarp: 500, SMOverride: 6, Seed: 5}

	// The full matrix as one batch, row-major: workloads outer, kinds inner.
	var jobs []engine.Job
	var caps []int
	for _, w := range workloads {
		for _, kind := range kinds {
			l1d := config.ScaleL1D(config.NewL1DConfig(kind), 4) // 4x the Fermi budget = 128 KB class
			gpu := config.VoltaGPU(l1d)
			jobs = append(jobs, engine.Job{
				Label:    "volta-" + kind.String(),
				GPU:      &gpu,
				Workload: w,
				Opts:     opts,
			})
			caps = append(caps, l1d.TotalKB())
		}
	}

	cfg := engine.Config{}
	if *storeDir != "" {
		cache, err := store.OpenTiered(*storeDir)
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		cfg.Cache = cache
	}
	runner := engine.New(cfg)
	results, err := runner.RunBatch(context.Background(), jobs)
	if err != nil {
		log.Fatalf("batch: %v", err)
	}

	fmt.Println("=== Volta-class GPU (84 SMs, 6 MB L2, 128 KB L1 budget) ===")
	fmt.Printf("(%d simulations on %d workers, %d served from the store)\n",
		len(jobs), runner.Workers(), runner.StoreHits())
	for wi, w := range workloads {
		fmt.Printf("\n%s:\n", w)
		base := results[wi*len(kinds)] // kinds[0] is the L1-SRAM baseline
		for ki, kind := range kinds {
			i := wi*len(kinds) + ki
			res := results[i]
			fmt.Printf("  %-10s IPC %6.3f  (%.2fx vs L1-SRAM)  miss rate %.3f  L1D capacity %d KB\n",
				kind.String(), res.IPC, res.SpeedupOver(base), res.L1DMissRate, caps[i])
		}
	}
	fmt.Println("\nEven with the 4x larger Volta L1 budget, the STT-MRAM-fused organisations keep")
	fmt.Println("their advantage on the irregular workload, while the write-heavy workload shows")
	fmt.Println("why the SRAM bank (and the read-level predictor steering writes into it) matters.")
}
