// Irregular-workload study: the paper's core claim is that irregular,
// write-once-read-multiple workloads (sparse linear algebra, MapReduce) are
// the ones that benefit from fusing STT-MRAM into the L1D. This example runs
// the four most irregular PolyBench kernels across all seven L1D
// organisations and prints the IPC and miss-rate ladder, mirroring
// Figures 13 and 14 for that slice of the benchmark suite.
//
// Run with:
//
//	go run ./examples/irregular
package main

import (
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/sim"
)

func main() {
	workloads := []string{"ATAX", "BICG", "MVT", "GESUM"}
	kinds := config.AllL1DKinds

	opts := sim.Options{InstructionsPerWarp: 500, SMOverride: 3, Seed: 7}

	fmt.Println("=== Irregular workloads: IPC normalised to L1-SRAM (miss rate in parentheses) ===")
	fmt.Printf("%-10s", "workload")
	for _, k := range kinds {
		fmt.Printf(" %14s", k)
	}
	fmt.Println()

	for _, w := range workloads {
		base, err := sim.RunWorkload(config.L1SRAM, w, opts)
		if err != nil {
			log.Fatalf("%s: %v", w, err)
		}
		fmt.Printf("%-10s", w)
		for _, k := range kinds {
			res := base
			if k != config.L1SRAM {
				res, err = sim.RunWorkload(k, w, opts)
				if err != nil {
					log.Fatalf("%s/%v: %v", w, k, err)
				}
			}
			fmt.Printf(" %6.2fx (%.2f)", res.SpeedupOver(base), res.L1DMissRate)
		}
		fmt.Println()
	}

	fmt.Println("\nReading the ladder, left to right, the paper's story should appear:")
	fmt.Println("  - FA-SRAM and By-NVM beat L1-SRAM by capturing more of the working set;")
	fmt.Println("  - Hybrid falls back because every migration blocks on the STT-MRAM write;")
	fmt.Println("  - Base-FUSE recovers the loss with the swap buffer and tag queue;")
	fmt.Println("  - FA-FUSE removes the conflict misses with the approximated full associativity;")
	fmt.Println("  - Dy-FUSE adds the read-level predictor and lands on top.")
}
