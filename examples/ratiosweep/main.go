// Ratio sweep: how should the fixed L1D area budget be split between SRAM and
// STT-MRAM? This example reproduces the Figure 18 sensitivity study on a
// GEMM-like workload: it sweeps the SRAM fraction from 1/16 to 3/4 of the
// cache (keeping the total area equal to the 32 KB SRAM baseline) and reports
// IPC and miss rate for each split.
//
// Run with:
//
//	go run ./examples/ratiosweep
package main

import (
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

func main() {
	const workload = "GEMM"
	profile, ok := trace.ProfileByName(workload)
	if !ok {
		log.Fatalf("workload %s not found", workload)
	}
	opts := sim.Options{InstructionsPerWarp: 500, SMOverride: 3, Seed: 11}

	fractions := []struct {
		label string
		value float64
	}{
		{"1/16", 1.0 / 16}, {"1/8", 1.0 / 8}, {"1/4", 1.0 / 4}, {"1/2", 1.0 / 2}, {"3/4", 3.0 / 4},
	}

	fmt.Printf("=== SRAM : STT-MRAM split sweep on %s (Dy-FUSE, fixed area budget) ===\n", workload)
	fmt.Printf("%-6s %10s %12s %10s %10s\n", "SRAM", "SRAM KB", "STT-MRAM KB", "IPC", "miss rate")

	bestLabel, bestIPC := "", 0.0
	for _, f := range fractions {
		cfg, err := config.WithRatio(config.DyFUSE, f.value)
		if err != nil {
			log.Fatalf("ratio %s: %v", f.label, err)
		}
		s, err := sim.New(config.FermiGPU(cfg), profile, opts)
		if err != nil {
			log.Fatalf("ratio %s: %v", f.label, err)
		}
		res := s.Run()
		fmt.Printf("%-6s %10d %12d %10.3f %10.3f\n", f.label, cfg.SRAMKB, cfg.STTMRAMKB, res.IPC, res.L1DMissRate)
		if res.IPC > bestIPC {
			bestIPC, bestLabel = res.IPC, f.label
		}
	}
	fmt.Printf("\nBest split: %s of the cache as SRAM (the paper identifies 1/2 as the sweet spot:\n", bestLabel)
	fmt.Println("more SRAM shrinks the total capacity, less SRAM cannot absorb the write-multiple data).")
}
