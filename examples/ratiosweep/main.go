// Ratio sweep: how should the fixed L1D area budget be split between SRAM and
// STT-MRAM? This example reproduces the Figure 18 sensitivity study on a
// GEMM-like workload: it sweeps the SRAM fraction from 1/16 to 3/4 of the
// cache (keeping the total area equal to the 32 KB SRAM baseline) and reports
// IPC and miss rate for each split.
//
// The five splits are independent simulations, so they are submitted as one
// batch to the engine's worker pool and run concurrently; the results come
// back in submission order regardless of which split finishes first.
//
// Run with:
//
//	go run ./examples/ratiosweep
//	go run ./examples/ratiosweep -store /tmp/fusestore   # reruns are warm
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/engine"
	"fuse/internal/sim"
	"fuse/internal/store"
)

func main() {
	storeDir := flag.String("store", "", "persistent result-store directory (optional)")
	flag.Parse()

	const workload = "GEMM"
	opts := sim.Options{InstructionsPerWarp: 500, SMOverride: 3, Seed: 11}

	fractions := []struct {
		label string
		value float64
	}{
		{"1/16", 1.0 / 16}, {"1/8", 1.0 / 8}, {"1/4", 1.0 / 4}, {"1/2", 1.0 / 2}, {"3/4", 3.0 / 4},
	}

	// One batch: one job per split, all sharing the workload and options.
	jobs := make([]engine.Job, 0, len(fractions))
	cfgs := make([]config.L1DConfig, 0, len(fractions))
	for _, f := range fractions {
		cfg, err := config.WithRatio(config.DyFUSE, f.value)
		if err != nil {
			log.Fatalf("ratio %s: %v", f.label, err)
		}
		cfgs = append(cfgs, cfg)
		gpu := config.FermiGPU(cfg)
		jobs = append(jobs, engine.Job{
			Label:    "ratio-" + f.label,
			GPU:      &gpu,
			Workload: workload,
			Opts:     opts,
		})
	}

	cfg := engine.Config{}
	if *storeDir != "" {
		cache, err := store.OpenTiered(*storeDir)
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		cfg.Cache = cache
	}
	runner := engine.New(cfg)
	results, err := runner.RunBatch(context.Background(), jobs)
	if err != nil {
		log.Fatalf("batch: %v", err)
	}

	fmt.Printf("=== SRAM : STT-MRAM split sweep on %s (Dy-FUSE, fixed area budget) ===\n", workload)
	fmt.Printf("(%d simulations on %d workers, %d served from the store)\n",
		len(jobs), runner.Workers(), runner.StoreHits())
	fmt.Printf("%-6s %10s %12s %10s %10s\n", "SRAM", "SRAM KB", "STT-MRAM KB", "IPC", "miss rate")

	bestLabel, bestIPC := "", 0.0
	for i, f := range fractions {
		res := results[i]
		fmt.Printf("%-6s %10d %12d %10.3f %10.3f\n", f.label, cfgs[i].SRAMKB, cfgs[i].STTMRAMKB, res.IPC, res.L1DMissRate)
		if res.IPC > bestIPC {
			bestIPC, bestLabel = res.IPC, f.label
		}
	}
	fmt.Printf("\nBest split: %s of the cache as SRAM (the paper identifies 1/2 as the sweet spot:\n", bestLabel)
	fmt.Println("more SRAM shrinks the total capacity, less SRAM cannot absorb the write-multiple data).")
}
