// Quickstart: build a Dy-FUSE L1D cache inside the paper's Fermi-class GPU
// model, run an irregular PolyBench workload on it, and compare the result
// against the conventional SRAM cache.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fuse/internal/config"
	"fuse/internal/sim"
	"fuse/internal/trace"
)

func main() {
	// 1. Pick a workload. ATAX (matrix-transpose-vector product) is one of
	// the irregular, thrash-prone kernels the paper's introduction motivates.
	profile, ok := trace.ProfileByName("ATAX")
	if !ok {
		log.Fatal("workload ATAX not found")
	}

	// 2. Simulation options: a short run is enough to see the effect.
	opts := sim.Options{
		InstructionsPerWarp: 600,
		SMOverride:          4, // simulate 4 of the 15 SMs (memory side scales down with it)
		Seed:                1,
	}

	run := func(kind config.L1DKind) sim.Result {
		gpuCfg := config.FermiGPU(config.NewL1DConfig(kind))
		s, err := sim.New(gpuCfg, trace.Synthetic(profile), opts)
		if err != nil {
			log.Fatalf("building %v simulator: %v", kind, err)
		}
		return s.Run()
	}

	// 3. Run the conventional SRAM L1D and the full FUSE proposal.
	baseline := run(config.L1SRAM)
	fuse := run(config.DyFUSE)

	// 4. Report.
	fmt.Println("=== FUSE quickstart: ATAX on a Fermi-class GPU ===")
	fmt.Printf("%-22s %12s %12s\n", "", "L1-SRAM", "Dy-FUSE")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", baseline.IPC, fuse.IPC)
	fmt.Printf("%-22s %12.3f %12.3f\n", "L1D miss rate", baseline.L1DMissRate, fuse.L1DMissRate)
	fmt.Printf("%-22s %12.1f %12.1f\n", "outgoing refs / SM", baseline.OutgoingPerSM, fuse.OutgoingPerSM)
	fmt.Printf("%-22s %12.2f %12.2f\n", "off-chip time fraction", baseline.OffChipFraction, fuse.OffChipFraction)
	fmt.Printf("\nDy-FUSE speedup over L1-SRAM: %.2fx\n", fuse.SpeedupOver(baseline))
	fmt.Printf("Outgoing memory references reduced by %.0f%%\n",
		(1-float64(fuse.L1D.OutgoingRequests)/float64(baseline.L1D.OutgoingRequests))*100)
	if fuse.PredTrue > 0 {
		fmt.Printf("Read-level predictor: %.0f%% confident-correct, %.0f%% neutral, %.0f%% wrong\n",
			fuse.PredTrue*100, fuse.PredNeutral*100, fuse.PredFalse*100)
	}
}
